"""Log-node DRAM buffer (buffer logging, §3.3.2 / §4.3).

Updates complete as soon as their parity delta sits in this buffer; the
buffer flushes to disk asynchronously through the node's log scheme.  With
``merge=True`` the buffer performs the paper's *merge-based buffer logging*:
a record arriving for a (stripe, parity) pair that already has a buffered
record is merged into it immediately, shrinking both buffer occupancy and the
flush workload.
"""

from __future__ import annotations

from repro.logstore.records import LogRecord, merge_records


class LogBuffer:
    """FIFO-ordered buffer of :class:`LogRecord` with byte accounting."""

    def __init__(
        self,
        capacity_bytes: int,
        flush_threshold_bytes: int,
        merge: bool = True,
    ):
        if flush_threshold_bytes > capacity_bytes:
            raise ValueError("flush threshold cannot exceed capacity")
        self.capacity_bytes = int(capacity_bytes)
        self.flush_threshold_bytes = int(flush_threshold_bytes)
        self.merge = merge
        # dict insertion order IS the arrival order (merging a record updates
        # the value in place without reordering, matching FIFO semantics),
        # which makes drop() O(1) -- no side list to linearly scan.
        self._records: dict[tuple[int, int], LogRecord] = {}
        self._unmerged: list[LogRecord] = []  # used when merge=False
        self.logical_bytes = 0
        self.merges = 0
        self.appends = 0

    def __len__(self) -> int:
        return len(self._unmerged) if not self.merge else len(self._records)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def add(self, record: LogRecord) -> None:
        """Buffer one record, merging per (stripe, parity) when enabled."""
        self.appends += 1
        if not self.merge:
            self._unmerged.append(record)
            self.logical_bytes += record.logical_nbytes
            return
        key = record.key
        existing = self._records.get(key)
        if existing is None:
            self._records[key] = record
            self.logical_bytes += record.logical_nbytes
        else:
            merged = merge_records([existing, record])
            self.logical_bytes += merged.logical_nbytes - existing.logical_nbytes
            self._records[key] = merged
            self.merges += 1

    def should_flush(self) -> bool:
        return self.logical_bytes >= self.flush_threshold_bytes

    def is_full(self) -> bool:
        return self.logical_bytes >= self.capacity_bytes

    def occupancy(self) -> float:
        """Buffered fraction of capacity -- the backpressure signal the log
        node exports upstream (see ``LogNode.backpressure``)."""
        return self.logical_bytes / self.capacity_bytes if self.capacity_bytes else 0.0

    def peek(self) -> list[LogRecord]:
        """Buffered records in arrival order, without draining."""
        if not self.merge:
            return list(self._unmerged)
        return list(self._records.values())

    def records_for(self, stripe_id: int, parity_index: int) -> list[LogRecord]:
        """Buffered records for one (stripe, parity) pair (for repairs)."""
        if not self.merge:
            return [
                r
                for r in self._unmerged
                if r.stripe_id == stripe_id and r.parity_index == parity_index
            ]
        rec = self._records.get((stripe_id, parity_index))
        return [rec] if rec is not None else []

    def drop(self, stripe_id: int, parity_index: int) -> int:
        """Discard buffered records for one (stripe, parity) (stripe GC'd)."""
        dropped = 0
        if self.merge:
            rec = self._records.pop((stripe_id, parity_index), None)
            if rec is not None:
                self.logical_bytes -= rec.logical_nbytes
                dropped = 1
        else:
            keep = []
            for rec in self._unmerged:
                if rec.stripe_id == stripe_id and rec.parity_index == parity_index:
                    self.logical_bytes -= rec.logical_nbytes
                    dropped += 1
                else:
                    keep.append(rec)
            self._unmerged = keep
        return dropped

    def drain(self) -> list[LogRecord]:
        """Remove and return everything buffered, in arrival order."""
        out = self.peek()
        self._records.clear()
        self._unmerged.clear()
        self.logical_bytes = 0
        return out
