"""Log records: the unit a log node buffers and flushes.

A record is either a *base parity chunk* (the r-1 non-XOR parities written at
stripe-creation time go to log nodes, §4.1) or a *parity delta* produced from
an update's data delta (Property 1, computed at the log node).  Records carry
their logical byte size so that disk accounting is independent of the
physical payload scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ec.delta import ParityDelta, merge_parity_deltas


@dataclass
class LogRecord:
    """One buffered/persisted log entry for a (stripe, parity) pair."""

    stripe_id: int
    parity_index: int
    logical_nbytes: int
    chunk: np.ndarray | None = None
    delta: ParityDelta | None = None

    def __post_init__(self) -> None:
        if (self.chunk is None) == (self.delta is None):
            raise ValueError("a LogRecord holds exactly one of chunk or delta")
        if self.logical_nbytes <= 0:
            raise ValueError(f"logical_nbytes must be positive, got {self.logical_nbytes}")

    @property
    def is_chunk(self) -> bool:
        return self.chunk is not None

    @property
    def key(self) -> tuple[int, int]:
        return (self.stripe_id, self.parity_index)

    @classmethod
    def for_chunk(
        cls, stripe_id: int, parity_index: int, payload: np.ndarray, logical_nbytes: int
    ) -> "LogRecord":
        return cls(
            stripe_id=stripe_id,
            parity_index=parity_index,
            logical_nbytes=logical_nbytes,
            chunk=np.asarray(payload, dtype=np.uint8),
        )

    @classmethod
    def for_delta(cls, delta: ParityDelta, logical_nbytes: int) -> "LogRecord":
        return cls(
            stripe_id=delta.stripe_id,
            parity_index=delta.parity_index,
            logical_nbytes=logical_nbytes,
            delta=delta,
        )


def merge_records(records: list[LogRecord]) -> LogRecord:
    """Collapse records of one (stripe, parity) into a single record.

    If a base chunk is present, all deltas fold into it (the result is a
    chunk record); otherwise deltas merge into one delta record (Property 2).
    The merged logical size is the size of what would actually be written:
    the chunk size if a chunk is present, else the union extent of the deltas.
    """
    if not records:
        raise ValueError("cannot merge an empty record list")
    key = records[0].key
    for rec in records[1:]:
        if rec.key != key:
            raise ValueError(f"cannot merge records of {rec.key} into {key}")
    chunks = [r for r in records if r.is_chunk]
    deltas = [r.delta for r in records if not r.is_chunk]
    if len(chunks) > 1:
        raise ValueError(f"multiple base chunks buffered for {key}")
    if chunks:
        base = chunks[0]
        merged_chunk = base.chunk.copy()
        for d in deltas:
            merged_chunk[d.offset : d.end] ^= d.payload
        return LogRecord.for_chunk(key[0], key[1], merged_chunk, base.logical_nbytes)
    merged = merge_parity_deltas(list(deltas))
    # A merged delta covers its union extent once; its logical size scales
    # the source records' average logical density to that extent.
    src_phys = sum(d.length for d in deltas)
    src_logical = sum(r.logical_nbytes for r in records)
    per_byte = src_logical / src_phys if src_phys else 1.0
    logical = max(1, round(merged.length * per_byte))
    return LogRecord.for_delta(merged, logical)
