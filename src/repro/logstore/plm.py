"""PLM: parity logging with (lazy) merging -- the paper's scheme (§5.2).

Flushes append the whole buffer to a continuous *staging* extent with one
sequential write, like PL.  When the staging extent grows past a threshold,
the node reads it back with one sequential read, merges records per
(stripe, parity) *across all staged flushes* (a much wider merge window than
PLR-m's single buffer), and writes each merged record into its reserved
region.  Repairs read the reserved region sequentially plus any records still
sitting in staging.
"""

from __future__ import annotations

from collections import defaultdict

from repro.logstore.base import LogScheme, ParityReadResult
from repro.logstore.records import LogRecord, merge_records
from repro.sim.disk import DiskModel


class LazyMergePLM(LogScheme):
    name = "plm"

    def __init__(
        self,
        disk: DiskModel,
        bytes_scale: float = 1.0,
        staging_threshold_bytes: int | None = None,
        **kwargs,
    ):
        super().__init__(disk, bytes_scale=bytes_scale, **kwargs)
        if staging_threshold_bytes is None:
            staging_threshold_bytes = disk.profile.log_staging_threshold_bytes
        self.staging_threshold_bytes = int(staging_threshold_bytes)
        self._staging: list[LogRecord] = []
        self._staging_bytes = 0
        self.lazy_merges = 0

    @property
    def staging_bytes(self) -> int:
        return self._staging_bytes

    def flush(self, records: list[LogRecord], now: float) -> float:
        if not records:
            return 0.0
        total = sum(r.logical_nbytes for r in records)
        dur = self.disk.write(total, sequential=True, now=now)
        self._staging.extend(records)
        self._staging_bytes += total
        self._note_flush(records, dur)
        if self._staging_bytes >= self.staging_threshold_bytes:
            dur += self._lazy_merge(now)
        return dur

    def _lazy_merge(self, now: float) -> float:
        """Read staging back, merge per (stripe, parity), write reserved regions."""
        if not self._staging:
            return 0.0
        self.lazy_merges += 1
        staged_records = len(self._staging)
        staged_bytes = self._staging_bytes
        dur = self.disk.read(self._staging_bytes, sequential=True, now=now)
        groups: dict[tuple[int, int], list[LogRecord]] = defaultdict(list)
        order: list[tuple[int, int]] = []
        for rec in self._staging:
            if rec.key not in groups:
                order.append(rec.key)
            groups[rec.key].append(rec)
        for key in order:
            merged = merge_records(groups[key])
            dur += self.disk.write(merged.logical_nbytes, sequential=False, now=now)
            self.region(*key).apply(merged)
        self._staging.clear()
        self._staging_bytes = 0
        self.counters.add("log_lazy_merges")
        self.counters.add("log_lazy_merge_bytes", staged_bytes)
        self.counters.add("log_random_writes", len(order))
        self.journal.emit(
            "lazy_merge",
            node=self.node_id,
            scheme=self.name,
            staged_records=staged_records,
            staged_bytes=staged_bytes,
            merged_writes=len(order),
            duration_s=dur,
        )
        return dur

    def settle(self, now: float) -> float:
        return self._lazy_merge(now)

    @property
    def disk_logical_bytes(self) -> int:
        return super().disk_logical_bytes + self._staging_bytes

    def drop(self, stripe_id: int, parity_index: int) -> None:
        super().drop(stripe_id, parity_index)
        key = (stripe_id, parity_index)
        kept = [r for r in self._staging if r.key != key]
        if len(kept) != len(self._staging):
            self._staging_bytes -= sum(
                r.logical_nbytes for r in self._staging if r.key == key
            )
            self._staging = kept

    def read_parity(
        self, stripe_id: int, parity_index: int, phys_size: int, now: float
    ) -> ParityReadResult:
        region = self.region(stripe_id, parity_index)
        duration, reads, logical = self._read_region(region, now)
        # Records still in staging must be fetched too (random reads at known
        # staging offsets), and folded on top of the reserved-region state.
        staged = [r for r in self._staging if r.key == (stripe_id, parity_index)]
        payload = region.materialise(phys_size)
        for rec in staged:
            duration += self.disk.read(rec.logical_nbytes, sequential=False, now=now)
            reads += 1
            logical += rec.logical_nbytes
            if rec.is_chunk:
                payload = rec.chunk.copy()
            else:
                payload[rec.delta.offset : rec.delta.end] ^= rec.delta.payload
        return ParityReadResult(
            duration_s=duration,
            payload=payload,
            disk_reads=reads,
            logical_bytes_read=logical,
            has_base=region.base is not None or any(r.is_chunk for r in staged),
        )
