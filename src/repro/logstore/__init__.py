"""Parity-log substrate: log-node buffers and on-disk layout schemes.

The paper evaluates four ways a log node persists parity chunks and parity
deltas (§5.1-§5.2):

* **PL**    -- append-only parity logging: each buffer flush is one sequential
  write, but a repair has to chase every delta with a random read.
* **PLR**   -- parity logging with reserved space (CodFS): every record is
  written into its stripe's reserved region (random writes), repair is one
  sequential read.
* **PLR-m** -- PLR plus merging of same-stripe deltas in memory right before
  flushing.
* **PLM**   -- the paper's scheme: flush the whole buffer sequentially into a
  staging extent, lazily read it back, merge across flushes, and write merged
  deltas into reserved regions.

All four maintain real physical parity bytes so repairs are verified
bit-exactly, and all disk costs/IO counts flow through
:class:`repro.sim.disk.DiskModel`.
"""

from repro.logstore.records import LogRecord
from repro.logstore.buffer import LogBuffer
from repro.logstore.base import LogScheme, ParityReadResult
from repro.logstore.pl import AppendOnlyPL
from repro.logstore.plr import ReservedSpacePLR
from repro.logstore.plrm import MergingPLRm
from repro.logstore.plm import LazyMergePLM

SCHEMES = {
    "pl": AppendOnlyPL,
    "plr": ReservedSpacePLR,
    "plr-m": MergingPLRm,
    "plm": LazyMergePLM,
}


def make_scheme(
    name: str,
    disk,
    bytes_scale: float = 1.0,
    journal=None,
    counters=None,
    node_id: str = "",
) -> LogScheme:
    """Instantiate a log scheme by its paper name (pl, plr, plr-m, plm).

    ``journal``/``counters``/``node_id`` wire the scheme into the cluster's
    flight recorder and shared counter bag; omitted (stand-alone use) the
    scheme gets a no-op journal and a private bag."""
    try:
        cls = SCHEMES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown log scheme {name!r}; choose from {sorted(SCHEMES)}") from None
    return cls(
        disk,
        bytes_scale=bytes_scale,
        journal=journal,
        counters=counters,
        node_id=node_id,
    )


__all__ = [
    "AppendOnlyPL",
    "LazyMergePLM",
    "LogBuffer",
    "LogRecord",
    "LogScheme",
    "MergingPLRm",
    "ParityReadResult",
    "ReservedSpacePLR",
    "SCHEMES",
    "make_scheme",
]
