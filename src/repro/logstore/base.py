"""Log-scheme interface and shared on-disk state.

A scheme owns the *persisted* state of one log node: for every
(stripe, parity) pair, the base parity chunk (if flushed yet) and the parity
deltas that have reached disk.  Schemes differ in how flushes map to disk IOs
and in what a repair read costs; the reconstructed bytes are identical across
schemes (tests assert this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.ec.delta import ParityDelta
from repro.logstore.records import LogRecord
from repro.obs.events import NULL_JOURNAL, EventJournal
from repro.sim.disk import DiskModel
from repro.sim.resources import Counters


@dataclass
class ReservedRegion:
    """Persisted records of one (stripe, parity) pair."""

    base: np.ndarray | None = None
    base_logical: int = 0
    deltas: list[ParityDelta] = field(default_factory=list)
    delta_logical: list[int] = field(default_factory=list)

    @property
    def logical_bytes(self) -> int:
        return self.base_logical + sum(self.delta_logical)

    def apply(self, record: LogRecord) -> None:
        """Fold one flushed record into the persisted state."""
        if record.is_chunk:
            self.base = record.chunk.copy()
            self.base_logical = record.logical_nbytes
        else:
            self.deltas.append(record.delta)
            self.delta_logical.append(record.logical_nbytes)

    def materialise(self, phys_size: int) -> np.ndarray:
        """Up-to-date parity bytes from persisted state only."""
        chunk = (
            self.base.copy() if self.base is not None else np.zeros(phys_size, dtype=np.uint8)
        )
        for d in self.deltas:
            chunk[d.offset : d.end] ^= d.payload
        return chunk


def region_extents(region: ReservedRegion, reserve_bytes: int) -> int:
    """How many disjoint disk extents hold this region's state.

    The base chunk plus ``reserve_bytes`` of deltas are contiguous; further
    delta bytes spill into chained extents of the same size, each adding a
    positioning cost on the repair path.  ``reserve_bytes <= 0`` means an
    unbounded reserve (one extent)."""
    if reserve_bytes <= 0:
        return 1
    delta_bytes = sum(region.delta_logical)
    overflow = max(0, delta_bytes - reserve_bytes)
    if overflow == 0:
        return 1
    return 1 + -(-overflow // reserve_bytes)  # ceil division


@dataclass
class ParityReadResult:
    """Outcome of reading one up-to-date parity chunk from disk."""

    duration_s: float
    payload: np.ndarray
    disk_reads: int
    logical_bytes_read: int
    has_base: bool


class LogScheme(ABC):
    """Flush/repair policy of a log node's disk."""

    name: str = "abstract"

    def __init__(
        self,
        disk: DiskModel,
        bytes_scale: float = 1.0,
        journal: EventJournal | None = None,
        counters: Counters | None = None,
        node_id: str = "",
    ):
        #: cost model + IO statistics for this node's disk
        self.disk = disk
        #: logical bytes per physical byte (payload-scale compensation)
        self.bytes_scale = float(bytes_scale)
        #: flight recorder + shared counter bag; stand-alone construction
        #: (unit tests) gets no-op/private instances so the flush paths never
        #: need a None check
        self.journal = journal if journal is not None else NULL_JOURNAL
        self.counters = counters if counters is not None else Counters()
        self.node_id = node_id
        self.regions: dict[tuple[int, int], ReservedRegion] = {}
        self.flushes = 0

    def region(self, stripe_id: int, parity_index: int) -> ReservedRegion:
        return self.regions.setdefault((stripe_id, parity_index), ReservedRegion())

    @abstractmethod
    def flush(self, records: list[LogRecord], now: float) -> float:
        """Persist drained buffer records; returns the IO service duration."""

    @abstractmethod
    def read_parity(
        self, stripe_id: int, parity_index: int, phys_size: int, now: float
    ) -> ParityReadResult:
        """Read the up-to-date persisted parity chunk (repair path)."""

    def settle(self, now: float) -> float:
        """Finish any deferred background work (default: nothing)."""
        return 0.0

    def drop(self, stripe_id: int, parity_index: int) -> None:
        """Release a (stripe, parity)'s persisted state (stripe GC'd)."""
        self.regions.pop((stripe_id, parity_index), None)

    @property
    def disk_logical_bytes(self) -> int:
        """Live logical bytes this scheme occupies on disk.

        Reserved-space layouts hold exactly their regions' bytes; PL's
        append-only log and PLM's staging extent override this to account
        for their extra on-disk footprint (the "stored chunks" dimension of
        Figure 1)."""
        return sum(r.logical_bytes for r in self.regions.values())

    # -- shared helpers -------------------------------------------------------

    def _note_flush(self, records: list[LogRecord], duration_s: float) -> None:
        """Account one completed flush batch: counters + a log_flush event.

        Counters are suffixed with the scheme name so per-scheme disk-log
        behaviour survives into profile snapshots (PL's one-sequential-write
        flushes vs PLR's per-record random writes are different columns, not
        one blurred total)."""
        self.flushes += 1
        nbytes = sum(r.logical_nbytes for r in records)
        self.counters.add(f"log_flushes_{self.name}")
        self.counters.add("log_flush_records", len(records))
        self.counters.add("log_flush_bytes", nbytes)
        self.journal.emit(
            "log_flush",
            node=self.node_id,
            scheme=self.name,
            records=len(records),
            nbytes=nbytes,
            duration_s=duration_s,
        )

    def _apply_all(self, records: list[LogRecord]) -> None:
        for rec in records:
            self.region(rec.stripe_id, rec.parity_index).apply(rec)

    def _read_region(self, region: ReservedRegion, now: float) -> tuple[float, int, int]:
        """Charge the disk for reading one reserved region.

        Returns (duration, disk reads, logical bytes).  With a bounded
        reserve (``profile.plr_reserve_bytes``) spilled delta extents each
        cost their own random read."""
        extents = region_extents(region, self.disk.profile.plr_reserve_bytes)
        logical = max(1, region.logical_bytes)
        per = max(1, logical // extents)
        duration = 0.0
        remaining = logical
        for i in range(extents):
            nbytes = per if i < extents - 1 else max(1, remaining)
            duration += self.disk.read(nbytes, sequential=False, now=now)
            remaining -= nbytes
        self.counters.add("log_region_reads")
        if extents > 1:
            self.counters.add("log_region_spill_extents", extents - 1)
        return duration, extents, logical
