"""MTTDL Markov model (§3.1, Figure 4, Table 2).

Two modes are provided:

* **paper mode** (default for :func:`table2`): reproduces Table 2 to within
  0.25% on every cell.  Reverse-engineering the table shows the authors used
  the Figure-4 chain (states 9 -> 5, i.e. the (6,3) code's node counts) for
  *every* code, varying only the single-failure repair rate
  ``mu = B / (S * k)`` with S = 16 TiB -- the cross-code MTTDL ratios in the
  table are exactly 6/k.  We reproduce that faithfully.
* **exact mode**: the per-code chain (states n = k+r down to k, absorbing at
  k-1) that the text describes, useful as a corrected sensitivity analysis.

Transitions in both modes, following the Azure-style assumptions:

* failure: state i -> i-1 at rate i * lambda,
* single-failure repair: (top-1) -> top at rate mu = B / (S * C) with C = k,
* multi-failure repair: deeper states -> +1 at rate mu' = 1/T.

MTTDL is the expected absorption time from the all-healthy state, solved
exactly from the first-step linear system over the transient states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SECONDS_PER_YEAR = 365.25 * 24 * 3600

#: Paper defaults: 1/lambda = 4 years, S = 16 TiB, T = 30 minutes.
DEFAULT_MTTF_YEARS = 4.0
DEFAULT_CAPACITY_BYTES = 16 * 2**40
DEFAULT_TRIGGER_S = 30 * 60

PAPER_CODES = [(6, 3), (10, 4), (12, 4), (15, 3)]
PAPER_BANDWIDTHS_GBPS = [1, 10, 40, 100]


def _chain_mttdl(
    failure_counts: list[int], lam: float, mu: float, mu_p: float
) -> float:
    """Absorption time of a birth-death chain.

    ``failure_counts`` lists, top state first, the number of live nodes in
    each transient state (the failure rate out of state idx is
    ``failure_counts[idx] * lam``).  The top-adjacent state repairs at ``mu``,
    deeper states at ``mu_p``; falling out of the last state is data loss.
    """
    m = len(failure_counts)
    q = np.zeros((m, m))
    for idx, live in enumerate(failure_counts):
        fail = live * lam
        q[idx, idx] -= fail
        if idx + 1 < m:
            q[idx, idx + 1] += fail
        if idx > 0:
            rep = mu if idx == 1 else mu_p
            q[idx, idx] -= rep
            q[idx, idx - 1] += rep
    t = np.linalg.solve(q, -np.ones(m))
    return float(t[0])


@dataclass
class MarkovModel:
    """CTMC for one (k, r) code and one repair bandwidth."""

    k: int
    r: int
    bandwidth_Gbps: float
    mttf_years: float = DEFAULT_MTTF_YEARS
    capacity_bytes: float = DEFAULT_CAPACITY_BYTES
    trigger_s: float = DEFAULT_TRIGGER_S
    #: True reproduces Table 2 exactly (Figure-4 chain for every code)
    paper_mode: bool = True

    @property
    def n(self) -> int:
        return self.k + self.r

    @property
    def failure_rate(self) -> float:
        """lambda, per node per year."""
        return 1.0 / self.mttf_years

    @property
    def single_repair_rate(self) -> float:
        """mu = B / (S * C) per year; C = k chunks read per repaired chunk."""
        bandwidth_Bps = self.bandwidth_Gbps * 1e9 / 8
        per_second = bandwidth_Bps / (self.capacity_bytes * self.k)
        return per_second * SECONDS_PER_YEAR

    @property
    def multi_repair_rate(self) -> float:
        """mu' = 1/T per year."""
        return SECONDS_PER_YEAR / self.trigger_s

    def mttdl_years(self) -> float:
        """Expected years to data loss starting from the all-healthy state."""
        if self.paper_mode:
            counts = [9, 8, 7, 6]  # Figure 4's chain, reused for every code
        else:
            counts = list(range(self.n, self.k - 1, -1))
        return _chain_mttdl(
            counts, self.failure_rate, self.single_repair_rate, self.multi_repair_rate
        )


def mttdl_years(
    k: int,
    r: int,
    bandwidth_Gbps: float,
    mttf_years: float = DEFAULT_MTTF_YEARS,
    capacity_bytes: float = DEFAULT_CAPACITY_BYTES,
    trigger_s: float = DEFAULT_TRIGGER_S,
    paper_mode: bool = True,
) -> float:
    """Convenience wrapper for one Table 2 cell."""
    return MarkovModel(
        k=k,
        r=r,
        bandwidth_Gbps=bandwidth_Gbps,
        mttf_years=mttf_years,
        capacity_bytes=capacity_bytes,
        trigger_s=trigger_s,
        paper_mode=paper_mode,
    ).mttdl_years()


def table2(paper_mode: bool = True) -> dict[tuple[int, int], dict[int, float]]:
    """The full Table 2: {(k, r): {B_Gbps: MTTDL_years}}."""
    return {
        (k, r): {
            b: mttdl_years(k, r, b, paper_mode=paper_mode)
            for b in PAPER_BANDWIDTHS_GBPS
        }
        for (k, r) in PAPER_CODES
    }
