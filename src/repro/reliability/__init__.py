"""Reliability analysis: the MTTDL Markov model of §3.1 (Table 2)."""

from repro.reliability.markov import MarkovModel, mttdl_years, table2

__all__ = ["MarkovModel", "mttdl_years", "table2"]
