#!/usr/bin/env python3
"""Reliability planning with the §3.1 Markov model.

Answers the design question behind HybridPL: how much MTTDL do you give up
by parking parity chunks on slow log nodes -- and how much do you get back by
keeping ONE parity (the XOR) repairable at DRAM/NIC speed?

Run:  python examples/reliability_planning.py
"""

from repro.analysis import fmt_scientific, format_table
from repro.reliability import mttdl_years

CODES = [(6, 3), (10, 4), (12, 4), (15, 3)]
BANDWIDTHS = [1, 10, 40, 100]  # Gb/s: disk-class up to 100GbE DRAM-class

rows = []
for k, r in CODES:
    row = [f"({k},{r})"]
    for b in BANDWIDTHS:
        row.append(fmt_scientific(mttdl_years(k, r, b)))
    rows.append(row)
print(format_table(
    ["code"] + [f"B={b} Gb/s" for b in BANDWIDTHS],
    rows,
    title="Table 2 (paper mode): MTTDL in years vs single-failure repair bandwidth",
))

# The design argument, quantified:
disk_only = mttdl_years(6, 3, 1)
dram_xor = mttdl_years(6, 3, 100)
print(
    f"\n(6,3): repairing single failures through 1 Gb/s log-node disks gives "
    f"{fmt_scientific(disk_only)} years;\nkeeping the XOR parity in DRAM "
    f"(100 Gb/s repair path) lifts that to {fmt_scientific(dram_xor)} years "
    f"-- a {dram_xor / disk_only:.0f}x gain.\nThat is why HybridPL pins "
    f"exactly one parity chunk per stripe in DRAM (§3.1)."
)

# Sensitivity: the corrected per-code chain (markov.py's exact mode)
print("\nSensitivity (exact per-code chains, not the paper's shared Figure-4 chain):")
rows = []
for k, r in CODES:
    rows.append([
        f"({k},{r})",
        fmt_scientific(mttdl_years(k, r, 10, paper_mode=True)),
        fmt_scientific(mttdl_years(k, r, 10, paper_mode=False)),
    ])
print(format_table(["code", "paper mode", "exact mode"], rows))
