#!/usr/bin/env python3
"""Record a workload trace once, replay it against two log schemes, and diff
the outcomes request-for-request.

Traces make comparisons airtight: both runs see byte-identical request
streams, so every difference in the table below is the scheme's doing.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.ascii_chart import hbar_chart
from repro.bench.runner import load_store, run_requests
from repro.core import LogECMem, StoreConfig
from repro.workloads import WorkloadSpec, generate_requests, trace

spec = WorkloadSpec.read_update("70:30", n_objects=800, n_requests=800, seed=21)

# 1) record the trace once
trace_path = Path(tempfile.gettempdir()) / "logecmem-demo.trace"
trace.save(generate_requests(spec), trace_path)
print(f"recorded {spec.n_requests} requests to {trace_path}")

# 2) replay it against two schemes
rows = []
ios = {}
for scheme in ("plr", "plm"):
    store = LogECMem(StoreConfig(k=10, r=4, scheme=scheme))
    load_store(store, spec)
    result = run_requests(store, trace.load(trace_path), spec)
    rows.append([
        scheme,
        f"{result.mean_latency_us('read'):.0f}",
        f"{result.mean_latency_us('update'):.0f}",
        result.disk_io_count,
        f"{store.cluster.log_disk_logical_bytes() / (1 << 20):.1f}",
    ])
    ios[scheme] = result.disk_io_count

print(format_table(
    ["scheme", "read us", "update us", "disk IOs", "log space MiB"],
    rows,
    title="Identical request stream, two log layouts",
))
print()
print(hbar_chart(ios, unit=" IOs", title="Disk IOs under the same trace"))
print(
    "\nLatency ties exactly (buffer logging hides the disk from the update\n"
    "path); the layouts differ in what reaches the disk -- PLM's staging +\n"
    "lazy merge cuts both the IO count and the on-disk footprint."
)
