#!/usr/bin/env python3
"""Pick a log-layout scheme for your update mix.

Runs the same workload under PL, PLR, PLR-m and PLM and reports the two
costs that trade off (§5): disk IOs during updates vs degraded-read latency
once multi-chunk failures force parity materialisation from disk.

Run:  python examples/scheme_tuning.py [read:update ratio, default 70:30]
"""

import sys
from statistics import mean

from repro.analysis import format_table
from repro.bench.experiments import _degraded_on_failed
from repro.bench.runner import run_workload
from repro.core import LogECMem, StoreConfig
from repro.workloads import WorkloadSpec

ratio = sys.argv[1] if len(sys.argv) > 1 else "70:30"
spec = WorkloadSpec.read_update(ratio, n_objects=900, n_requests=900, seed=11)

rows = []
for scheme in ("pl", "plr", "plr-m", "plm"):
    store = LogECMem(StoreConfig(k=10, r=4, value_size=4096, scheme=scheme))
    result = run_workload(store, spec)
    ios = result.disk_io_count
    update_us = result.mean_latency_us("update")
    store.cluster.kill("dram0")
    store.cluster.kill("dram1")
    repair_us = mean(_degraded_on_failed(store, spec, samples=40)) * 1e6
    rows.append([scheme, ios, f"{update_us:.0f}", f"{repair_us:.0f}"])

print(format_table(
    ["scheme", "disk IOs", "update us", "2-failure degraded read us"],
    rows,
    title=f"Log scheme tradeoffs, (10,4) code, r:u={ratio}",
))
print(
    "\nPL writes cheapest but repairs chase scattered deltas; PLR repairs in\n"
    "one seek but pays a random write per record; PLM (the paper's scheme)\n"
    "stages sequentially and lazily merges -- close-to-PL writes with\n"
    "close-to-PLR repairs. That's why LogECMem defaults to PLM."
)
