#!/usr/bin/env python3
"""Capacity planning: pick a redundancy scheme for a DRAM budget and an
availability target.

Given a dataset size, a memory budget and an MTTDL floor, this walks the
candidate configurations -- replication and erasure codes with all-DRAM or
HybridPL parity placement -- scoring each with the same models the paper
uses: the §3.1 Markov chain for reliability and a measured workload run for
update latency and footprint.

Run:  python examples/capacity_planner.py
"""

from repro.analysis import fmt_scientific, format_table
from repro.baselines import make_store
from repro.bench.runner import run_workload
from repro.core import StoreConfig
from repro.reliability import mttdl_years
from repro.workloads import WorkloadSpec

DATASET_GiB = 4.0            # 1M x 4 KiB objects
BUDGET_GiB = 7.0             # DRAM we are willing to buy
MTTDL_FLOOR_YEARS = 1e8      # availability target
CANDIDATES = [
    ("replication", 6, 3),   # 4 copies
    ("ipmem", 6, 3),
    ("logecmem", 6, 3),
    ("ipmem", 12, 4),
    ("logecmem", 12, 4),
    ("logecmem", 16, 4),
]

spec = WorkloadSpec.read_update("80:20", n_objects=1200, n_requests=1200, seed=9)

rows = []
for name, k, r in CANDIDATES:
    store = make_store(name, StoreConfig(k=k, r=r, value_size=4096))
    result = run_workload(store, spec)
    memory_GiB = result.memory_bytes / (1 << 30) * (1_000_000 / spec.n_objects)
    # single-failure repair bandwidth: DRAM-class for anything that keeps a
    # parity (or replica) in DRAM -- all candidates here do
    mttdl = mttdl_years(k, r, 100)
    fits = memory_GiB <= BUDGET_GiB and mttdl >= MTTDL_FLOOR_YEARS
    rows.append([
        f"{name} ({k},{r})",
        f"{memory_GiB:.1f}",
        f"{result.mean_latency_us('update'):.0f}",
        fmt_scientific(mttdl),
        "yes" if fits else "no",
    ])

print(format_table(
    ["configuration", "DRAM GiB", "update us", "MTTDL yrs", "fits budget+target"],
    rows,
    title=(
        f"Capacity plan: {DATASET_GiB:.0f} GiB dataset, "
        f"{BUDGET_GiB:.0f} GiB budget, MTTDL >= {MTTDL_FLOOR_YEARS:.0e} yrs"
    ),
))

feasible = [r for r in rows if r[-1] == "yes"]
if feasible:
    best = min(feasible, key=lambda r: float(r[2]))
    print(f"\nRecommendation: {best[0]} -- cheapest updates inside the envelope.")
else:
    print("\nNo candidate fits; raise the budget or relax the target.")
