#!/usr/bin/env python3
"""Big-data analytics cache: the workload the paper's introduction motivates.

An in-memory KV tier keeps hot analytics objects (4 KiB partitions) in DRAM.
The job mix is update-heavy (50% reads / 50% updates, Zipf-skewed).  We run
the same workload against all five systems and print the availability /
latency / memory triangle each one picks.

Run:  python examples/analytics_cache.py
"""

from repro.analysis import format_table
from repro.baselines import make_store
from repro.bench.runner import run_workload
from repro.core import StoreConfig
from repro.workloads import WorkloadSpec

K, R = 10, 4
N_OBJECTS = 1200
N_REQUESTS = 1200

spec = WorkloadSpec.read_update(
    "50:50", n_objects=N_OBJECTS, n_requests=N_REQUESTS, value_size=4096, seed=7
)

rows = []
for name in ("vanilla", "replication", "ipmem", "fsmem", "logecmem"):
    store = make_store(name, StoreConfig(k=K, r=R, value_size=4096))
    result = run_workload(store, spec)
    tolerates = {
        "vanilla": 0,
        "replication": R,
        "ipmem": R,
        "fsmem": R,
        "logecmem": R,
    }[name]
    rows.append(
        [
            name,
            tolerates,
            f"{result.mean_latency_us('read'):.0f}",
            f"{result.mean_latency_us('update'):.0f}",
            f"{result.memory_bytes / (1 << 20):.1f}",
            f"{result.throughput_ops_s / 1e3:.1f}",
        ]
    )

print(
    format_table(
        ["system", "failures tolerated", "read us", "update us", "DRAM MiB", "Kops/s"],
        rows,
        title=f"Analytics cache, ({K},{R}) code, {N_OBJECTS} x 4KiB objects, r:u=50:50",
    )
)

print(
    "\nTakeaway: LogECMem keeps replication-class availability at roughly "
    "1/3 of its memory, with updates cheaper than in-place erasure coding."
)
