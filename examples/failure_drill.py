#!/usr/bin/env python3
"""Failure drill: walk LogECMem through every repair path the paper designs.

1. Transient chunk unavailability -> degraded read from DRAM (XOR fast path).
2. Two DRAM nodes down -> degraded reads that materialise a logged parity
   from disk (§5.2).
3. Whole-node loss -> node repair, with and without log-assist (§5.3).

Run:  python examples/failure_drill.py
"""

import numpy as np

from repro.analysis import format_table
from repro.bench.runner import load_store
from repro.core import LogECMem, StoreConfig
from repro.core.repair import repair_node
from repro.workloads import WorkloadSpec

config = StoreConfig(k=6, r=3, value_size=4096, scheme="plm")
spec = WorkloadSpec.read_update("80:20", n_objects=600, n_requests=600, seed=3)

store = LogECMem(config)
load_store(store, spec)
for i in range(120):  # create parity deltas so the log path has real work
    store.update(f"user{i % 600:016d}")
store.finalize()
print(f"loaded {spec.n_objects} objects, {len(store.stripe_index)} stripes, "
      f"120 updates logged\n")

# 1. single failure --------------------------------------------------------
key = "user0000000000000007"
normal = store.read(key).latency_s
degraded = store.degraded_read(key)
assert np.array_equal(degraded.value, store.expected_value(key))
print("1) transient unavailability:")
print(f"   normal read {normal * 1e6:.0f} us -> degraded read "
      f"{degraded.latency_s * 1e6:.0f} us (k-1 data + XOR, all DRAM)\n")

# 2. two DRAM nodes down ---------------------------------------------------
store.cluster.kill("dram0")
store.cluster.kill("dram1")
hits = []
for i in range(600):
    k = f"user{i:016d}"
    loc = store.object_index.get(k)
    if loc is None:
        continue
    node = store.stripe_index.get(loc.stripe_id).chunk_nodes[loc.seq_no]
    if node in ("dram0", "dram1"):
        res = store.read(k)
        assert np.array_equal(res.value, store.expected_value(k))
        hits.append(res.latency_s)
    if len(hits) >= 25:
        break
print("2) two DRAM nodes down (multi-chunk failures):")
print(f"   {len(hits)} degraded reads through logged parities, mean "
      f"{sum(hits) / len(hits) * 1e6:.0f} us; "
      f"log-node disk reads: {store.counters['logged_parity_disk_reads']:.0f}\n")
store.cluster.restore("dram0")
store.cluster.restore("dram1")

# 3. node repair -----------------------------------------------------------
print("3) whole-node repair (log-assist on/off):")
rows = []
for assist in (False, True):
    drill = LogECMem(StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
    load_store(drill, spec)
    drill.cluster.kill("dram3")
    result = repair_node(drill, "dram3", log_assist=assist)
    rows.append([
        "log-assist" if assist else "DRAM-only",
        f"{result.repair_time_s * 1e3:.1f}",
        f"{result.throughput_GiB_per_min:.2f}",
        result.chunks_repaired,
        result.log_parity_fetches,
    ])
print(format_table(
    ["mode", "repair ms", "GiB/min", "chunks", "parities from logs"], rows
))
