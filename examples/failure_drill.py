#!/usr/bin/env python3
"""Failure drill: walk LogECMem through the paper's repair paths, driven by
the chaos harness (``repro.chaos``) with a scripted fault schedule.

1. Transient blip -> degraded reads from DRAM (XOR fast path), healed retry.
2. Permanent DRAM crash -> degraded reads, then whole-node repair (§5.3).
3. Log-node crash -> buffer lost, parities rebuilt from DRAM state (§3.3.2).
4. The invariant sweep: everything acked is still bit-exact.

Run:  python examples/failure_drill.py
"""

import numpy as np

from repro.analysis import format_table
from repro.bench.runner import load_store
from repro.chaos import FaultEvent, FaultKind, FaultSchedule, run_chaos
from repro.core import LogECMem, StoreConfig
from repro.core.repair import repair_node
from repro.workloads import WorkloadSpec

config = StoreConfig(k=6, r=3, value_size=4096, scheme="plm")
spec = WorkloadSpec.read_update("80:20", n_objects=600, n_requests=600, seed=3)

# ------------------------------------------------- scripted chaos run
store = LogECMem(config)
schedule = FaultSchedule([
    FaultEvent(0.005, FaultKind.BLIP, "dram2", duration_s=0.002),
    FaultEvent(0.015, FaultKind.CRASH, "dram0"),
    FaultEvent(0.030, FaultKind.CRASH, "log0"),
    FaultEvent(0.045, FaultKind.SLOW, "dram4", duration_s=0.01, magnitude=8.0),
])
report = run_chaos(store, spec, schedule=schedule)
print("scripted drill (blip + DRAM crash + log crash + straggler):\n")
print(report.summary())
print("\ntimeline:")
for t, text in report.timeline:
    print(f"  {t * 1e3:8.3f} ms  {text}")
assert report.violations == 0
assert report.degraded_reads > 0

# --------------------------------------- the same drill, Poisson-generated
store = LogECMem(StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
report2 = run_chaos(store, spec, expected_faults=5.0)
print(f"\nseeded Poisson drill: {sum(report2.faults_fired.values())} faults "
      f"{report2.faults_fired}, {report2.degraded_reads} degraded reads, "
      f"{report2.violations} violations, fingerprint {report2.fingerprint()}")
assert report2.violations == 0

# ------------------------------------------------ repair cost comparison
print("\nwhole-node repair (log-assist on/off):")
rows = []
for assist in (False, True):
    drill = LogECMem(StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
    load_store(drill, spec)
    key = "user0000000000000007"
    drill.cluster.kill("dram3")
    if drill.object_index.get(key) is not None:
        res = drill.read(key)  # reads keep working while the node is down
        assert np.array_equal(res.value, drill.expected_value(key))
    result = repair_node(drill, "dram3", log_assist=assist)
    rows.append([
        "log-assist" if assist else "DRAM-only",
        f"{result.repair_time_s * 1e3:.1f}",
        f"{result.throughput_GiB_per_min:.2f}",
        result.chunks_repaired,
        result.log_parity_fetches,
    ])
print(format_table(
    ["mode", "repair ms", "GiB/min", "chunks", "parities from logs"], rows
))
