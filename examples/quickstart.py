#!/usr/bin/env python3
"""Quickstart: stand up a LogECMem store, run the four basic requests, and
look at what HybridPL buys you.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LogECMem, StoreConfig

# A (6,3) code, as deployed in HDFS: 6 data chunks + 1 XOR parity in DRAM,
# 2 logged parities on disk-backed log nodes.
config = StoreConfig(k=6, r=3, value_size=4096, scheme="plm")
store = LogECMem(config)

# ---------------------------------------------------------------- write/read
print("== writes ==")
for i in range(24):
    result = store.write(f"user{i}")
print(f"wrote 24 objects; {len(store.stripe_index)} stripes sealed, "
      f"write latency ~{result.latency_s * 1e6:.0f} us")

print("\n== read ==")
result = store.read("user7")
assert np.array_equal(result.value, store.expected_value("user7"))
print(f"read user7 in {result.latency_s * 1e6:.0f} us")

# -------------------------------------------------------------------- update
print("\n== update (the paper's contribution) ==")
result = store.update("user7")
print(f"updated user7 in {result.latency_s * 1e6:.0f} us")
print(f"parity chunks read: {store.counters['parity_chunk_reads']:.0f} "
      f"(IPMem would read r={config.r}); "
      f"data deltas shipped to log nodes: {store.counters['parity_deltas_sent']:.0f}")

# ------------------------------------------------------------- degraded read
print("\n== degraded read (single failure: k-1 data + XOR parity, all DRAM) ==")
loc = store.object_index.lookup("user7")
failed_node = store.stripe_index.get(loc.stripe_id).chunk_nodes[loc.seq_no]
store.cluster.kill(failed_node)
result = store.read("user7")  # transparently degrades
assert result.degraded
assert np.array_equal(result.value, store.expected_value("user7"))
print(f"node {failed_node} down; degraded read served in "
      f"{result.latency_s * 1e6:.0f} us without touching any log-node disk")
store.cluster.restore(failed_node)

# ------------------------------------------------------------------- footprint
print("\n== memory ==")
data_bytes = 24 * config.value_size
print(f"logical data: {data_bytes} B; DRAM footprint: {store.memory_logical_bytes} B "
      f"(~(k+1)/k = {(config.k + 1) / config.k:.3f}x, vs (k+r)/k = "
      f"{(config.k + config.r) / config.k:.3f}x for all-DRAM erasure coding)")

store.finalize()
print("\nDone.")
