"""Shared helpers for the figure/table benchmarks.

Each ``bench_*`` file regenerates one paper artifact at laptop scale and
prints the same rows/series the paper reports.  Scales are chosen so the
whole ``pytest benchmarks/ --benchmark-only`` run completes in minutes; crank
the ``SCALE`` constants for closer-to-paper populations.
"""

import pytest


def paper_print(text: str) -> None:
    """Emit a paper-style table so it survives pytest's capture (-s not needed
    for the final summary since pytest-benchmark prints its own table; rows
    are also echoed via the terminal reporter)."""
    print("\n" + text, flush=True)


@pytest.fixture
def show():
    return paper_print
