"""Figure 13 (Experiment 4): update latency and memory overhead in the
large-scale setting, k in {16, 32, 64, 128} with r = 4."""

from repro.analysis import format_table
from repro.bench.experiments import LARGE_CODES, update_memory_sweep

N_OBJECTS = 4096
N_REQUESTS = 1024
RATIOS = ("95:5", "80:20", "70:30", "50:50")
STORES = ("replication", "ipmem", "fsmem", "logecmem")


def _run():
    return update_memory_sweep(
        LARGE_CODES,
        ratios=RATIOS,
        n_objects=N_OBJECTS,
        n_requests=N_REQUESTS,
    )


def _get(rows, store, k, ratio, field="update_latency_us"):
    return next(
        r[field] for r in rows if r["store"] == store and r["k"] == k and r["ratio"] == ratio
    )


def test_fig13_large_scale(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    for k, r in LARGE_CODES:
        lat = [
            [s] + [f"{_get(rows, s, k, ratio):.0f}" for ratio in RATIOS] for s in STORES
        ]
        mem = [
            [s] + [f"{_get(rows, s, k, ratio, 'memory_GiB'):.2f}" for ratio in RATIOS]
            for s in STORES
        ]
        show(format_table(["store"] + list(RATIOS), lat,
                          title=f"Fig 13: update latency us, ({k},{r}) code"))
        show(format_table(["store"] + list(RATIOS), mem,
                          title=f"Fig 13: memory GiB, ({k},{r}) code (paper scale)"))

    for k, _ in LARGE_CODES:
        # LogECMem still beats IPMem, stays flat in k
        for ratio in RATIOS:
            assert _get(rows, "logecmem", k, ratio) < _get(rows, "ipmem", k, ratio)
            # lowest memory overhead everywhere (Fig 13 e-h)
            assert _get(rows, "logecmem", k, ratio, "memory_GiB") == min(
                _get(rows, s, k, ratio, "memory_GiB") for s in STORES
            )
        # FSMem's re-computation cost explodes with k even at 70:30
        assert _get(rows, "fsmem", k, "70:30") > _get(rows, "logecmem", k, "70:30")

    # LogECMem's latency is k-independent; FSMem's grows with k
    lec = [_get(rows, "logecmem", k, "95:5") for k, _ in LARGE_CODES]
    fs = [_get(rows, "fsmem", k, "95:5") for k, _ in LARGE_CODES]
    assert max(lec) / min(lec) < 1.1
    assert fs[-1] > 2 * fs[0]
