"""Control-plane benchmark: the same seeded chaos schedule with and without
the self-healing plane, across two workload mixes.

Not a paper figure -- this exercises the detect -> propose -> verify ->
execute loop end to end: the open-loop arm leaves crashes down for the rest
of the run, the closed-loop arm repairs them, and the MTTR/availability gap
between the arms is the plane's measurable contribution.
"""

from repro.analysis import format_table
from repro.heal import experiment_ok, run_heal_experiment

N_OBJECTS = 400
N_REQUESTS = 400
RATIOS = ["95:5", "50:50"]


def _run():
    out = []
    for ratio in RATIOS:
        doc = run_heal_experiment(
            ratio=ratio, n_objects=N_OBJECTS, n_requests=N_REQUESTS, seed=42
        )
        doc.pop("reports")
        out.append({"ratio": ratio, "doc": doc})
    return out


def test_heal_control_plane(benchmark, show):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for res in results:
        doc = res["doc"]
        for arm in ("disabled", "enabled"):
            summary = doc[arm]
            rows.append([
                res["ratio"], arm, f"{summary['mttr_ms']:.3f}",
                f"{summary['availability_pct']:.4f}", summary["ops_failed"],
                summary["degraded_reads"], summary["violations"],
            ])
    show(format_table(
        ["ratio", "plane", "MTTR ms", "avail %", "failed", "degraded",
         "violations"],
        rows,
        title=f"Self-healing drill: seed 42, ~6 faults, {N_REQUESTS} requests",
    ))

    for res in results:
        doc = res["doc"]
        problems = experiment_ok(doc)
        assert not problems, (res["ratio"], problems)
        # every proposed action either executed or was explicitly abandoned
        heal = doc["heal"]
        assert heal["actions_executed"] + heal["escalations"] >= 1
    # the point of the subsystem: at least one mix drew a crash and the
    # plane strictly improved MTTR and availability on it
    assert any(
        res["doc"]["disabled"]["faults_fired"].get("crash", 0) > 0
        and res["doc"]["mttr_improvement_ms"] > 0
        and res["doc"]["availability_gain_pct"] > 0
        for res in results
    )
    # reproducibility: rerunning one mix reproduces both arm fingerprints
    again = run_heal_experiment(
        ratio=RATIOS[0], n_objects=N_OBJECTS, n_requests=N_REQUESTS, seed=42
    )
    ref = next(res["doc"] for res in results if res["ratio"] == RATIOS[0])
    for arm in ("disabled", "enabled"):
        assert again[arm]["fingerprint"] == ref[arm]["fingerprint"]
