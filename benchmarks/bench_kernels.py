"""Micro-benchmarks of the erasure-coding kernels (pytest-benchmark proper).

These are the hot paths every request crosses: GF(2^8) scalar-buffer
multiplication, stripe encoding, decode-from-survivors, and delta merging.
"""

import numpy as np
import pytest

from repro.ec.delta import ParityDelta, merge_parity_deltas
from repro.ec.gf256 import gf_mul_scalar
from repro.ec.rs import RSCode

CHUNK = 4096


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


def test_gf_mul_scalar_throughput(benchmark, rng):
    buf = rng.integers(0, 256, size=1 << 20, dtype=np.uint8)  # 1 MiB
    out = benchmark(gf_mul_scalar, 0x53, buf)
    assert out.shape == buf.shape


@pytest.mark.parametrize("k,r", [(6, 3), (10, 4), (12, 4)])
def test_rs_encode_throughput(benchmark, rng, k, r):
    code = RSCode(k, r)
    data = rng.integers(0, 256, size=(k, CHUNK), dtype=np.uint8)
    parity = benchmark(code.encode, data)
    assert parity.shape == (r, CHUNK)


def test_rs_xor_parity_fast_path(benchmark, rng):
    code = RSCode(10, 4)
    data = rng.integers(0, 256, size=(10, CHUNK), dtype=np.uint8)
    xor = benchmark(code.xor_parity, data)
    assert np.array_equal(xor, code.encode(data)[0])


def test_rs_decode_throughput(benchmark, rng):
    code = RSCode(10, 4)
    data = rng.integers(0, 256, size=(10, CHUNK), dtype=np.uint8)
    parity = code.encode(data)
    available = {i: data[i] for i in range(2, 10)}
    available[10] = parity[0]
    available[11] = parity[1]

    def decode():
        return code.decode(available, wanted=[0, 1])

    out = benchmark(decode)
    assert np.array_equal(out[0], data[0])


def test_xor_repair_fast_path(benchmark, rng):
    code = RSCode(10, 4)
    data = rng.integers(0, 256, size=(10, CHUNK), dtype=np.uint8)
    parity = code.encode(data)
    survivors = {i: data[i] for i in range(1, 10)}
    survivors[10] = parity[0]
    out = benchmark(code.repair_with_xor, 0, survivors)
    assert np.array_equal(out, data[0])


def test_delta_merge_throughput(benchmark, rng):
    deltas = [
        ParityDelta(1, 1, int(off), rng.integers(0, 256, 512, dtype=np.uint8))
        for off in rng.integers(0, CHUNK - 512, size=64)
    ]
    merged = benchmark(merge_parity_deltas, deltas)
    assert merged.merged_count == 64
