"""Table 1 (Observation 2): memory overhead of in-place vs full-stripe
update, in units of the total object size M, per read:update ratio.

The analytic model is cross-checked against the trace-measured overhead and
against an actual FSMem run."""

from repro.analysis import format_table, observation2_table
from repro.analysis.observations import measured_full_stripe_overhead
from repro.baselines import make_store
from repro.bench.runner import run_workload
from repro.core.config import StoreConfig
from repro.workloads import WorkloadSpec

RATIOS = ["95:5", "80:20", "70:30", "50:50"]
PAPER = {"95:5": 1.05, "80:20": 1.2, "70:30": 1.3, "50:50": 1.5}


def _table1():
    model = observation2_table(RATIOS)
    # the trace measurement runs at the paper's exact 1M/1M scale
    traced = {
        ratio: measured_full_stripe_overhead(
            6,
            WorkloadSpec.read_update(
                ratio, n_objects=1_000_000, n_requests=1_000_000, seed=42
            ),
        )
        for ratio in RATIOS
    }
    # store-level cross-check at small scale: stale bytes on a real FSMem run
    measured = {}
    for ratio in RATIOS:
        spec = WorkloadSpec.read_update(
            ratio, n_objects=1200, n_requests=1200, seed=42
        )
        store = make_store("fsmem", StoreConfig(k=6, r=3))
        run_workload(store, spec)
        data_bytes = spec.n_objects * spec.value_size
        stale = store.stale_logical_bytes
        measured[ratio] = 1.0 + stale / data_bytes
    return model, traced, measured


def test_tab01_observation2(benchmark, show):
    model, traced, measured = benchmark.pedantic(_table1, rounds=1, iterations=1)
    rows = []
    for ratio in RATIOS:
        rows.append(
            [
                ratio,
                "M",
                f"{model[ratio]['full-stripe']:.2f}M",
                f"{traced[ratio]:.3f}M",
                f"{measured[ratio]:.3f}M",
                f"{PAPER[ratio]:.2f}M",
            ]
        )
    show(
        format_table(
            ["r:u", "in-place", "full-stripe (model)", "trace", "FSMem run", "paper"],
            rows,
            title="Table 1: memory overhead of in-place vs full-stripe update",
        )
    )
    for ratio in RATIOS:
        assert abs(traced[ratio] - PAPER[ratio]) < 0.02
        assert model[ratio]["in-place"] == 1.0
