"""Extension (§9 future work): LogECMem over SSD- and NVRAM-backed log nodes.

The paper plans to investigate NVRAM/SSD deployments; here we sweep the log
media under the same (10,4) update-heavy workload and measure what changes:
multi-chunk-failure degraded reads (where log disks sit on the critical path)
and the PL-vs-PLM gap (which faster media compresses)."""

from statistics import mean

from repro.analysis import format_table
from repro.bench.experiments import _degraded_on_failed
from repro.bench.runner import run_workload
from repro.core import LogECMem, StoreConfig
from repro.sim.params import ec2_profile, nvram_log_profile, ssd_log_profile
from repro.workloads import WorkloadSpec

MEDIA = [("ebs", ec2_profile), ("ssd", ssd_log_profile), ("nvram", nvram_log_profile)]
N = 900


def _run():
    out = {}
    for media, profile_fn in MEDIA:
        for scheme in ("pl", "plm"):
            spec = WorkloadSpec.read_update("50:50", n_objects=N, n_requests=N, seed=5)
            cfg = StoreConfig(k=10, r=4, scheme=scheme, profile=profile_fn())
            store = LogECMem(cfg)
            run_workload(store, spec)
            store.cluster.kill("dram0")
            store.cluster.kill("dram1")
            repair_us = mean(_degraded_on_failed(store, spec, samples=40)) * 1e6
            out[(media, scheme)] = repair_us
    return out


def test_ext_media_sweep(benchmark, show):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for media, _ in MEDIA:
        pl, plm = out[(media, "pl")], out[(media, "plm")]
        rows.append([media, f"{pl:.0f}", f"{plm:.0f}", f"{(pl - plm) / pl * 100:.1f}%"])
    show(format_table(
        ["log media", "PL repair us", "PLM repair us", "PLM advantage"],
        rows,
        title="Extension: 2-failure degraded reads vs log media, (10,4) r:u=50:50",
    ))
    # faster media -> cheaper repairs across the board
    for scheme in ("pl", "plm"):
        assert out[("nvram", scheme)] < out[("ssd", scheme)] < out[("ebs", scheme)]
    # and the PLM-over-PL advantage shrinks as seeks get cheap
    adv = {
        media: (out[(media, "pl")] - out[(media, "plm")]) / out[(media, "pl")]
        for media, _ in MEDIA
    }
    assert adv["ebs"] > adv["ssd"] > adv["nvram"]
