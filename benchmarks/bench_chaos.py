"""Chaos harness benchmark: every store survives the same seeded fault
schedule; reports availability, degraded-read share and invariant counts.

Not a paper figure -- this exercises the fault-injection subsystem end to end
and doubles as a robustness comparison across the five stores: replication
degrades reads for free, the erasure-coded stores pay decode costs, LogECMem
additionally recovers its log nodes.
"""

from repro.analysis import format_table
from repro.baselines import make_store
from repro.chaos import run_chaos
from repro.core import StoreConfig
from repro.workloads import WorkloadSpec

N_OBJECTS = 600
N_REQUESTS = 900
STORES = ["vanilla", "replication", "ipmem", "fsmem", "logecmem"]


def _run():
    rows = []
    for name in STORES:
        store = make_store(name, StoreConfig(k=4, r=3, scheme="plm"))
        spec = WorkloadSpec(
            n_objects=N_OBJECTS, n_requests=N_REQUESTS, seed=42,
            read_ratio=0.5, update_ratio=0.5,
        )
        report = run_chaos(store, spec, expected_faults=6.0)
        rows.append({
            "store": name,
            "acked": report.ops_acked,
            "failed": report.ops_failed,
            "degraded": report.degraded_reads,
            "retries": report.retries,
            "faults": sum(report.faults_fired.values()),
            "repairs": len(report.repairs) + len(report.recoveries),
            "availability_pct": report.availability * 100,
            "violations": report.violations,
            "fingerprint": report.fingerprint(),
        })
    return rows


def test_chaos_all_stores(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    show(format_table(
        ["store", "acked", "failed", "degraded", "retries", "faults",
         "repairs", "avail %", "violations"],
        [[r["store"], r["acked"], r["failed"], r["degraded"], r["retries"],
          r["faults"], r["repairs"], f"{r['availability_pct']:.2f}",
          r["violations"]] for r in rows],
        title=f"Chaos drill: seed 42, ~6 faults, {N_REQUESTS} requests",
    ))

    for r in rows:
        assert r["violations"] == 0, r["store"]
        assert r["acked"] + r["failed"] >= N_REQUESTS - r["failed"]
        assert r["faults"] > 0, "the schedule must actually fire"
    # fault tolerance is the point: the redundant stores serve degraded reads
    assert any(r["degraded"] > 0 for r in rows if r["store"] != "vanilla")
    # reproducibility: rerunning one store yields the same fingerprint
    store = make_store("logecmem", StoreConfig(k=4, r=3, scheme="plm"))
    spec = WorkloadSpec(
        n_objects=N_OBJECTS, n_requests=N_REQUESTS, seed=42,
        read_ratio=0.5, update_ratio=0.5,
    )
    again = run_chaos(store, spec, expected_faults=6.0)
    ref = next(r for r in rows if r["store"] == "logecmem")
    assert again.fingerprint() == ref["fingerprint"]
