"""The reproduction contract: every headline claim of the paper, verified in
one table.  This is the summary the other benchmarks expand on."""

from repro.analysis import format_table
from repro.analysis.paper_check import verify_all


def test_paper_claims(benchmark, show):
    claims = benchmark.pedantic(
        verify_all, kwargs=dict(n_objects=1200, n_requests=1200), rounds=1, iterations=1
    )
    rows = [
        [
            c.claim,
            f"{c.paper:g}",
            f"{c.ours:.2f}",
            f"±{c.tolerance:g}",
            "PASS" if c.passed else "FAIL",
            c.source,
        ]
        for c in claims
    ]
    show(format_table(
        ["claim", "paper", "ours", "tol", "verdict", "source"],
        rows,
        title="Reproduction contract: headline claims",
    ))
    failed = [c for c in claims if not c.passed]
    assert not failed, [c.claim for c in failed]
    assert len(claims) >= 11
