"""Figure 15 (Experiment 7): node repair throughput (GiB/min) with and
without log-assist, for the paper's four codes."""

from repro.analysis import format_table
from repro.bench.experiments import PAPER_CODES, experiment7

N_OBJECTS = 2400
N_REQUESTS = 1200


def _run():
    return experiment7(codes=PAPER_CODES, n_objects=N_OBJECTS, n_requests=N_REQUESTS)


def test_fig15_node_repair(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    def get(k, assist):
        return next(
            r for r in rows if r["k"] == k and r["log_assist"] is assist
        )

    table = []
    for k, r in PAPER_CODES:
        plain = get(k, False)["throughput_GiB_per_min"]
        assisted = get(k, True)["throughput_GiB_per_min"]
        table.append(
            [f"({k},{r})", f"{plain:.2f}", f"{assisted:.2f}",
             f"{(assisted - plain) / plain * 100:.1f}%"]
        )
    show(format_table(
        ["code", "w/o log-assist", "w/ log-assist", "gain (paper: up to 18.2%)"],
        table,
        title="Fig 15: node repair throughput GiB/min",
    ))

    gains = []
    for k, _ in PAPER_CODES:
        plain = get(k, False)
        assisted = get(k, True)
        assert assisted["throughput_GiB_per_min"] > plain["throughput_GiB_per_min"]
        assert assisted["assisted_stripes"] > 0
        gains.append(
            assisted["throughput_GiB_per_min"] / plain["throughput_GiB_per_min"] - 1
        )
    # gain decreases with k ((6,3) first, (15,3) last ... note (10,4),(12,4) between)
    ks = [k for k, _ in PAPER_CODES]
    ordered = [g for _, g in sorted(zip(ks, gains))]
    assert ordered == sorted(ordered, reverse=True)
    assert 0.10 < max(gains) < 0.30  # paper: up to 18.2%
    # throughput decreases with k (retrieval of k chunks dominates)
    plains = [get(k, False)["throughput_GiB_per_min"] for k, _ in PAPER_CODES]
    assert plains == sorted(plains, reverse=True)
