"""Extension (§9 future work): popularity-aware delta coalescing.

AdaptiveLogECMem tracks per-object update popularity at the proxy and
coalesces hot objects' log-bound deltas (Property 2) before shipping.  Under
the Zipf-skewed update streams the paper uses, this cuts log-node messages
and disk IOs without changing any visible state (the scrubber verifies)."""

from repro.analysis import format_table
from repro.bench.runner import run_workload
from repro.core import LogECMem, StoreConfig
from repro.core.adaptive import AdaptiveLogECMem
from repro.core.scrub import scrub
from repro.workloads import WorkloadSpec

N = 900
RATIOS = ("80:20", "50:50")


def _run():
    out = {}
    for ratio in RATIOS:
        spec = WorkloadSpec.read_update(ratio, n_objects=N, n_requests=N, seed=6)
        for name, factory in (
            ("logecmem", lambda: LogECMem(StoreConfig(k=10, r=4))),
            (
                "adaptive",
                lambda: AdaptiveLogECMem(
                    StoreConfig(k=10, r=4), hot_threshold=2, coalesce_updates=8
                ),
            ),
        ):
            store = factory()
            result = run_workload(store, spec)
            assert scrub(store).clean
            out[(ratio, name)] = {
                "deltas": store.counters["parity_deltas_sent"],
                "disk_ios": result.disk_io_count,
                "update_us": result.mean_latency_us("update"),
            }
    return out


def test_ext_adaptive_coalescing(benchmark, show):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for ratio in RATIOS:
        for name in ("logecmem", "adaptive"):
            cell = out[(ratio, name)]
            rows.append([
                ratio, name, int(cell["deltas"]), cell["disk_ios"],
                f"{cell['update_us']:.0f}",
            ])
    show(format_table(
        ["r:u", "store", "deltas shipped", "disk IOs", "update us"],
        rows,
        title="Extension: popularity-aware coalescing (§9), (10,4) code",
    ))
    for ratio in RATIOS:
        plain = out[(ratio, "logecmem")]
        adaptive = out[(ratio, "adaptive")]
        assert adaptive["deltas"] < plain["deltas"]
        assert adaptive["disk_ios"] <= plain["disk_ios"]
    # the heavier the update mix, the bigger the saving
    def saving(ratio):
        plain = out[(ratio, "logecmem")]["deltas"]
        return 1 - out[(ratio, "adaptive")]["deltas"] / plain

    assert saving("50:50") > saving("80:20") * 0.9
