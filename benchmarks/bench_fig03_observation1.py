"""Figure 3 (Observation 1): number of updated stripes vs. number of new
data chunks per stripe, for the paper's four codes and four read:update
ratios.  Trace-driven over the same Zipfian request stream the stores see."""

from repro.analysis import format_table, stripe_update_histogram
from repro.workloads import WorkloadSpec

CODES = [(6, 3), (10, 4), (12, 4), (15, 3)]
RATIOS = ["95:5", "80:20", "70:30", "50:50"]
# the trace analysis is vectorised, so this one runs at the paper's EXACT
# scale: one million objects, one million requests
N_OBJECTS = 1_000_000
N_REQUESTS = 1_000_000


def _figure3():
    out = {}
    for k, r in CODES:
        for ratio in RATIOS:
            spec = WorkloadSpec.read_update(
                ratio, n_objects=N_OBJECTS, n_requests=N_REQUESTS, seed=42
            )
            out[(k, r, ratio)] = stripe_update_histogram(k, spec)
    return out


def test_fig03_observation1(benchmark, show):
    hists = benchmark.pedantic(_figure3, rounds=1, iterations=1)
    for k, r in CODES:
        rows = []
        max_bucket = max(max(h) for key, h in hists.items() if key[0] == k)
        for ratio in RATIOS:
            h = hists[(k, r, ratio)]
            rows.append([ratio] + [h.get(b, 0) for b in range(1, max_bucket + 1)])
        show(
            format_table(
                ["r:u"] + [str(b) for b in range(1, max_bucket + 1)],
                rows,
                title=f"Figure 3: updated stripes by # new chunks, ({k},{r}) code",
            )
        )
    # the paper's observation: update-light -> single new chunk dominates;
    # update-heavy -> mass shifts to multi-chunk stripes
    for k, r in CODES:
        light = hists[(k, r, "95:5")]
        heavy = hists[(k, r, "50:50")]
        assert light[1] / sum(light.values()) > 0.75
        heavy_multi = 1 - heavy.get(1, 0) / sum(heavy.values())
        light_multi = 1 - light.get(1, 0) / sum(light.values())
        assert heavy_multi > light_multi
