"""Figure 10 (Experiment 1): read/write/degraded-read latency and throughput
for Vanilla, 5-way replication, IPMem, FSMem and LogECMem under the (10,4)
code, value sizes 1/4/16 KiB, read:write 95:5 and 50:50."""

import math

from repro.analysis import format_table
from repro.bench.experiments import experiment1

N_OBJECTS = 1500
N_REQUESTS = 1500
STORES = ("vanilla", "replication", "ipmem", "fsmem", "logecmem")


def _run():
    return experiment1(
        n_objects=N_OBJECTS,
        n_requests=N_REQUESTS,
        value_sizes=(1024, 4096, 16384),
        ratios=("95:5", "50:50"),
        degraded_samples=60,
    )


def _panel(rows, metric, ratio, title, show):
    table = []
    for store in STORES:
        line = [store]
        for size in (1024, 4096, 16384):
            row = next(
                r for r in rows
                if r["store"] == store and r["value_size"] == size and r["ratio"] == ratio
            )
            v = row[metric]
            line.append("n/a" if isinstance(v, float) and math.isnan(v) else f"{v:.0f}")
        table.append(line)
    show(format_table(["store", "1KiB", "4KiB", "16KiB"], table, title=title))


def test_fig10_basic_io(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    for ratio in ("95:5", "50:50"):
        _panel(rows, "read_latency_us", ratio, f"Fig 10: read latency us (r:w={ratio})", show)
        _panel(rows, "write_latency_us", ratio, f"Fig 10: write latency us (r:w={ratio})", show)
        _panel(rows, "throughput_kops", ratio, f"Fig 10: throughput Kops/s (r:w={ratio})", show)
        _panel(rows, "degraded_latency_us", ratio, f"Fig 10: degraded read us (r:w={ratio})", show)

    def row(store, size, ratio):
        return next(
            r for r in rows
            if r["store"] == store and r["value_size"] == size and r["ratio"] == ratio
        )

    for ratio in ("95:5", "50:50"):
        for size in (1024, 4096, 16384):
            # reads: all systems similar (Fig 10 a,b)
            reads = [row(s, size, ratio)["read_latency_us"] for s in STORES]
            assert max(reads) / min(reads) < 1.2
            # writes: replication highest, vanilla lowest (Fig 10 c,d)
            assert row("replication", size, ratio)["write_latency_us"] > row(
                "logecmem", size, ratio
            )["write_latency_us"]
            assert row("vanilla", size, ratio)["write_latency_us"] <= min(
                row(s, size, ratio)["write_latency_us"] for s in STORES if s != "vanilla"
            )
            # degraded: replication cheapest; EC systems within 20% of each other
            ec = [row(s, size, ratio)["degraded_latency_us"] for s in ("ipmem", "fsmem", "logecmem")]
            assert row("replication", size, ratio)["degraded_latency_us"] < min(ec)
            assert max(ec) / min(ec) < 1.25
            # throughput: vanilla at least ties everyone (Fig 10 e,f)
            assert row("vanilla", size, ratio)["throughput_kops"] >= max(
                row(s, size, ratio)["throughput_kops"] for s in STORES
            ) * 0.999
