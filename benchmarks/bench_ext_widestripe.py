"""Extension: the §2.2.1 wide-stripe argument, quantified.

Per-update chunk transfers of every update scheme as k grows (r = 4,
update-light m = 1): delta-based schemes are k-invariant, full-stripe GC
traffic is linear in k, direct reconstruction is linear too.  This is the
analytic backbone behind Figure 13 / Table 3's large-k band."""

from repro.analysis import format_table
from repro.analysis.transfers import sweep_k

KS = [6, 10, 12, 15, 16, 32, 64, 128]
SCHEMES = ["direct", "in-place", "full-stripe", "parity-logging", "hybrid-pl"]


def _run():
    return sweep_k(KS, r=4, new_chunks_per_stripe=1)


def test_ext_widestripe_transfers(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    def total(k, scheme):
        return next(r["total"] for r in rows if r["k"] == k and r["scheme"] == scheme)

    table = [
        [scheme] + [f"{total(k, scheme):.1f}" for k in KS] for scheme in SCHEMES
    ]
    show(format_table(
        ["scheme"] + [f"k={k}" for k in KS], table,
        title="Wide stripes (§2.2.1): chunk transfers per update, r=4, m=1",
    ))

    for scheme in ("in-place", "parity-logging", "hybrid-pl"):
        assert total(6, scheme) == total(128, scheme)  # k-invariant
    assert total(128, "full-stripe") > 10 * total(128, "hybrid-pl")
    assert total(128, "direct") > 10 * total(128, "hybrid-pl")
    # HybridPL reads the fewest chunks of the delta-based schemes
    assert total(6, "hybrid-pl") < total(6, "in-place")
