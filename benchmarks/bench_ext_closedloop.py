"""Extension: closed-loop DES throughput, complementing Figure 10(e,f).

The analytic throughput estimate ignores queueing; this bench replays each
system's recorded per-op demands through the closed-loop simulator and
reports achieved throughput plus proxy CPU/NIC utilisation, at two client
concurrencies."""

from repro.analysis import format_table
from repro.baselines import make_store
from repro.bench.runner import run_workload, simulate_closed_loop
from repro.core.config import StoreConfig
from repro.workloads import WorkloadSpec

STORES = ("vanilla", "replication", "ipmem", "fsmem", "logecmem")
N = 800


def _run():
    out = {}
    spec = WorkloadSpec.read_write("50:50", n_objects=N, n_requests=N, seed=8)
    for name in STORES:
        store = make_store(name, StoreConfig(k=10, r=4))
        result = run_workload(store, spec, record_demands=True)
        for conc in (8, 64):
            out[(name, conc)] = simulate_closed_loop(store, result, concurrency=conc)
    return out


def test_ext_closedloop_throughput(benchmark, show):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name in STORES:
        for conc in (8, 64):
            r = out[(name, conc)]
            rows.append([
                name, conc, f"{r.throughput_ops_s / 1e3:.1f}",
                f"{r.cpu_utilisation * 100:.0f}%", f"{r.nic_utilisation * 100:.0f}%",
                f"{r.mean_response_s * 1e6:.0f}",
            ])
    show(format_table(
        ["store", "clients", "Kops/s", "proxy CPU", "proxy NIC", "response us"],
        rows,
        title="Extension: closed-loop throughput, (10,4), r:w=50:50",
    ))
    for name in STORES:
        # more clients, more throughput (until a resource saturates)
        assert out[(name, 64)].throughput_ops_s >= out[(name, 8)].throughput_ops_s
    # Figure 10(e,f)'s ordering survives queueing: Vanilla >= EC >= 5-way
    v = out[("vanilla", 64)].throughput_ops_s
    lec = out[("logecmem", 64)].throughput_ops_s
    rep = out[("replication", 64)].throughput_ops_s
    assert v >= lec * 0.999
    assert lec > rep
