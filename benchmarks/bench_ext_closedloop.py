"""Extension: closed-loop DES throughput, complementing Figure 10(e,f).

The analytic throughput estimate ignores queueing; this bench replays each
system's recorded per-op demands through the concurrent discrete-event
engine (:func:`repro.engine.compat.simulate_engine`, the port of the legacy
closed-loop simulator) and reports achieved throughput plus proxy CPU/NIC
utilisation, at two client concurrencies.  A C=1 point per store checks the
engine's compatibility mode against the legacy arithmetic."""

import pytest

from repro.analysis import format_table
from repro.baselines import make_store
from repro.bench.runner import run_workload
from repro.core.config import StoreConfig
from repro.engine.compat import simulate_demands, simulate_engine
from repro.workloads import WorkloadSpec

STORES = ("vanilla", "replication", "ipmem", "fsmem", "logecmem")
N = 800


def _run():
    out = {}
    legacy_serial = {}
    spec = WorkloadSpec.read_write("50:50", n_objects=N, n_requests=N, seed=8)
    for name in STORES:
        store = make_store(name, StoreConfig(k=10, r=4))
        result = run_workload(store, spec, record_demands=True)
        profile = store.cfg.profile
        for conc in (1, 8, 64):
            out[(name, conc)] = simulate_engine(result.demands, profile, conc)
        legacy_serial[name] = simulate_demands(result.demands, profile, 1)
    return out, legacy_serial


def test_ext_closedloop_throughput(benchmark, show):
    out, legacy_serial = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name in STORES:
        for conc in (8, 64):
            r = out[(name, conc)]
            rows.append([
                name, conc, f"{r.throughput_ops_s / 1e3:.1f}",
                f"{r.cpu_utilisation * 100:.0f}%", f"{r.nic_utilisation * 100:.0f}%",
                f"{r.mean_response_s * 1e6:.0f}",
            ])
    show(format_table(
        ["store", "clients", "Kops/s", "proxy CPU", "proxy NIC", "response us"],
        rows,
        title="Extension: engine closed-loop throughput, (10,4), r:w=50:50",
    ))
    for name in STORES:
        # C=1 compatibility: the engine serialises exactly like the legacy
        # model when nothing contends
        eng, legacy = out[(name, 1)], legacy_serial[name]
        assert eng.operations == legacy.operations
        assert eng.makespan_s == pytest.approx(legacy.makespan_s, rel=1e-9)
        assert eng.throughput_ops_s == pytest.approx(
            legacy.throughput_ops_s, rel=1e-9
        )
        # more clients, more throughput (until a resource saturates)
        assert out[(name, 64)].throughput_ops_s >= out[(name, 8)].throughput_ops_s
    # Figure 10(e,f)'s ordering survives queueing: Vanilla >= EC >= 5-way
    v = out[("vanilla", 64)].throughput_ops_s
    lec = out[("logecmem", 64)].throughput_ops_s
    rep = out[("replication", 64)].throughput_ops_s
    assert v >= lec * 0.999
    assert lec > rep
