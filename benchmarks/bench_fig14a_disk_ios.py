"""Figure 14(a)-(b) (Experiment 5): disk IOs during updates for the PL, PLR,
PLR-m and PLM log schemes -- vs read:update ratio at (10,4), and vs code at
read:update = 95:5."""

from repro.analysis import format_table
from repro.bench.experiments import PAPER_CODES, RU_RATIOS, SCHEMES, experiment5

N_OBJECTS = 1500
N_REQUESTS = 1500


def _run():
    return experiment5(
        codes=PAPER_CODES,
        ratios=tuple(RU_RATIOS),
        n_objects=N_OBJECTS,
        n_requests=N_REQUESTS,
    )


def test_fig14a_disk_ios(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    def get(scheme, k, ratio):
        return next(
            r["disk_ios"]
            for r in rows
            if r["scheme"] == scheme and r["k"] == k and r["ratio"] == ratio
        )

    panel_a = [
        [scheme] + [str(int(get(scheme, 10, ratio))) for ratio in RU_RATIOS]
        for scheme in SCHEMES
    ]
    show(format_table(["scheme"] + RU_RATIOS, panel_a,
                      title="Fig 14(a): disk IOs vs r:u ratio, (10,4) code"))
    panel_b = [
        [scheme] + [str(int(get(scheme, k, "95:5"))) for k, _ in PAPER_CODES]
        for scheme in SCHEMES
    ]
    show(format_table(["scheme"] + [f"({k},{r})" for k, r in PAPER_CODES], panel_b,
                      title="Fig 14(b): disk IOs vs code, r:u = 95:5"))

    def space(scheme, k, ratio):
        return next(
            r["log_disk_MiB"]
            for r in rows
            if r["scheme"] == scheme and r["k"] == k and r["ratio"] == ratio
        )

    panel_space = [
        [scheme] + [f"{space(scheme, 10, ratio):.1f}" for ratio in RU_RATIOS]
        for scheme in SCHEMES
    ]
    show(format_table(
        ["scheme"] + RU_RATIOS, panel_space,
        title="Extension: log-node disk footprint MiB, (10,4) (PL never compacts)",
    ))
    # append-only PL occupies the most disk; merged layouts the least
    for ratio in RU_RATIOS:
        assert space("pl", 10, ratio) >= space("plr", 10, ratio)
        assert space("plm", 10, ratio) <= space("plr", 10, ratio)

    for k, _ in PAPER_CODES:
        # PL flushes whole buffers: far fewer IOs than any reserved-space scheme
        assert get("pl", k, "95:5") < 0.2 * get("plm", k, "95:5")
        # PLM < PLR-m < PLR (merging ever-wider windows)
        assert get("plm", k, "95:5") <= get("plr-m", k, "95:5") <= get("plr", k, "95:5")
    for ratio in RU_RATIOS[1:]:
        assert get("plr", 10, ratio) >= get("plr", 10, "95:5")  # more updates, more IOs

    # paper headline: PLM cuts IOs vs PLR by up to ~24% ((15,3), 95:5)
    cut = 1 - get("plm", 15, "95:5") / get("plr", 15, "95:5")
    show(format_table(["metric", "ours", "paper"],
                      [["PLM vs PLR IO reduction, (15,3) 95:5", f"{cut*100:.1f}%", "23.7%"]]))
    assert cut > 0.1
