"""Table 2: MTTDL (years) for varying repair bandwidth B under the paper's
four codes, from the §3.1 Markov model.  Reproduced cell-for-cell."""

import pytest

from repro.analysis import fmt_scientific, format_table
from repro.reliability import table2
from repro.reliability.markov import PAPER_BANDWIDTHS_GBPS, PAPER_CODES

PAPER_TABLE2 = {
    (6, 3): {1: 1.03e9, 10: 9.76e9, 40: 3.89e10, 100: 9.71e10},
    (10, 4): {1: 6.41e8, 10: 5.88e9, 40: 2.34e10, 100: 5.83e10},
    (12, 4): {1: 5.44e8, 10: 4.91e9, 40: 1.95e10, 100: 4.86e10},
    (15, 3): {1: 4.47e8, 10: 3.94e9, 40: 1.56e10, 100: 3.89e10},
}


def test_tab02_mttdl(benchmark, show):
    grid = benchmark.pedantic(table2, rounds=1, iterations=1)
    rows = []
    for code in PAPER_CODES:
        row = [f"({code[0]},{code[1]}) code"]
        for b in PAPER_BANDWIDTHS_GBPS:
            ours = grid[code][b]
            row.append(f"{fmt_scientific(ours)} (paper {fmt_scientific(PAPER_TABLE2[code][b])})")
        rows.append(row)
    show(
        format_table(
            ["code"] + [f"B={b} Gb/s" for b in PAPER_BANDWIDTHS_GBPS],
            rows,
            title="Table 2: MTTDL in years (ours vs paper)",
        )
    )
    for code in PAPER_CODES:
        for b in PAPER_BANDWIDTHS_GBPS:
            assert grid[code][b] == pytest.approx(PAPER_TABLE2[code][b], rel=0.01)
