"""Figure 12 (Experiment 3): memory overhead (GiB at the paper's 1M x 4KiB
scale) vs read:update ratio for the paper's four codes."""

import pytest

from repro.analysis import format_table
from repro.bench.experiments import PAPER_CODES, RU_RATIOS, update_memory_sweep

N_OBJECTS = 1500
N_REQUESTS = 1500
STORES = ("replication", "ipmem", "fsmem", "logecmem")


def _run():
    return update_memory_sweep(
        PAPER_CODES, ratios=tuple(RU_RATIOS), n_objects=N_OBJECTS, n_requests=N_REQUESTS
    )


def _get(rows, store, k, ratio):
    return next(
        r["memory_GiB"]
        for r in rows
        if r["store"] == store and r["k"] == k and r["ratio"] == ratio
    )


def test_fig12_memory(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    for k, r in PAPER_CODES:
        table = [
            [store] + [f"{_get(rows, store, k, ratio):.2f}" for ratio in RU_RATIOS]
            for store in STORES
        ]
        show(
            format_table(
                ["store"] + RU_RATIOS,
                table,
                title=f"Fig 12: memory overhead GiB, ({k},{r}) code (paper scale)",
            )
        )

    # shapes + the paper's headline magnitudes
    for k, _r in PAPER_CODES:
        for ratio in RU_RATIOS:
            assert _get(rows, "logecmem", k, ratio) < _get(rows, "ipmem", k, ratio)
            assert _get(rows, "logecmem", k, ratio) < _get(rows, "fsmem", k, ratio)
            assert _get(rows, "replication", k, ratio) > _get(rows, "fsmem", k, ratio)

    # (6,3): LogECMem saves ~22.2% vs IPMem and ~49% vs FSMem at 50:50
    save_ip = 1 - _get(rows, "logecmem", 6, "50:50") / _get(rows, "ipmem", 6, "50:50")
    save_fs = 1 - _get(rows, "logecmem", 6, "50:50") / _get(rows, "fsmem", 6, "50:50")
    assert save_ip == pytest.approx(0.222, abs=0.04)
    assert save_fs == pytest.approx(0.49, abs=0.06)
    # (12,4): ~79.3% vs 5-way replication
    save_rep = 1 - _get(rows, "logecmem", 12, "50:50") / _get(rows, "replication", 12, "50:50")
    assert save_rep == pytest.approx(0.793, abs=0.03)
    show(
        format_table(
            ["comparison", "ours", "paper"],
            [
                ["LogECMem vs IPMem (6,3)", f"{save_ip*100:.1f}%", "22.2%"],
                ["LogECMem vs FSMem (6,3)", f"{save_fs*100:.1f}%", "49.0%"],
                ["LogECMem vs 5-way (12,4)", f"{save_rep*100:.1f}%", "79.3%"],
            ],
            title="Fig 12 headline memory savings",
        )
    )
