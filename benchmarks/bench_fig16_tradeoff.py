"""Figure 16 + Table 3 (§6.4): the memory-overhead / update-latency tradeoff
across codes and read:update ratios, and the best/low/high rankings."""

from repro.analysis import format_table, table3, tradeoff_points
from repro.bench.experiments import update_memory_sweep

CODES = [(6, 3), (10, 4), (16, 4), (32, 4)]
RATIOS = ("95:5", "80:20", "70:30", "50:50")
# requests == objects, as in the paper: the FSMem-vs-LogECMem crossover
# depends on the update density per stripe
N_OBJECTS = 1500
N_REQUESTS = 1500


def _run():
    return update_memory_sweep(
        CODES,
        ratios=RATIOS,
        stores=("ipmem", "fsmem", "logecmem"),
        n_objects=N_OBJECTS,
        n_requests=N_REQUESTS,
    )


def test_fig16_tradeoff(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    points = tradeoff_points(rows)
    show(format_table(
        ["store", "code", "r:u", "memory GiB", "update us"],
        [
            [p.store, f"({p.k},{p.r})", p.ratio, f"{p.memory_GiB:.2f}",
             f"{p.update_latency_us:.0f}"]
            for p in sorted(points, key=lambda p: (p.k, p.ratio, p.store))
        ],
        title="Fig 16: memory overhead vs update latency points",
    ))

    cells = table3(rows)
    show(format_table(
        ["k", "r:u", "IPMem", "FSMem", "LogECMem"],
        [
            [str(k), ratio, cell["ipmem"], cell["fsmem"], cell["logecmem"]]
            for (k, ratio), cell in sorted(cells.items())
        ],
        title="Table 3: update latency (memory overhead) rankings",
    ))

    # paper's Table 3 anchor rows
    assert cells[(6, "95:5")]["logecmem"] == "best (best)"
    assert cells[(6, "95:5")]["ipmem"] == "low (low)"
    assert cells[(6, "95:5")]["fsmem"] == "high (high)"
    assert cells[(6, "50:50")]["fsmem"].startswith("best")
    assert cells[(6, "50:50")]["logecmem"].endswith("(best)")
    # k >= 16, 80:20: LogECMem takes the best latency slot (Table 3's bottom band)
    assert cells[(16, "80:20")]["logecmem"] == "best (best)"
    assert cells[(32, "80:20")]["logecmem"] == "best (best)"
    # LogECMem always owns the best memory column
    for cell in cells.values():
        assert cell["logecmem"].endswith("(best)")

    # Figure 16's framing: LogECMem's latencies are flat across ratios per
    # code, while FSMem's vary widely
    for k, _r in CODES:
        lec = [p.update_latency_us for p in points if p.store == "logecmem" and p.k == k]
        fs = [p.update_latency_us for p in points if p.store == "fsmem" and p.k == k]
        assert max(lec) / min(lec) < 1.1
        assert max(fs) / min(fs) > 1.5
