"""Figure 11 (Experiment 2): update latency vs read:update ratio for
replication, IPMem, FSMem and LogECMem under the paper's four codes."""

from repro.analysis import format_table
from repro.bench.experiments import PAPER_CODES, RU_RATIOS, update_memory_sweep

N_OBJECTS = 1500
N_REQUESTS = 1500
STORES = ("replication", "ipmem", "fsmem", "logecmem")


def _run():
    return update_memory_sweep(
        PAPER_CODES, ratios=tuple(RU_RATIOS), n_objects=N_OBJECTS, n_requests=N_REQUESTS
    )


def _get(rows, store, k, ratio, field="update_latency_us"):
    return next(
        r[field] for r in rows if r["store"] == store and r["k"] == k and r["ratio"] == ratio
    )


def test_fig11_update_latency(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    for k, r in PAPER_CODES:
        table = [
            [store] + [f"{_get(rows, store, k, ratio):.0f}" for ratio in RU_RATIOS]
            for store in STORES
        ]
        show(
            format_table(
                ["store"] + RU_RATIOS,
                table,
                title=f"Fig 11: update latency us, ({k},{r}) code",
            )
        )

    # paper shapes
    for k, _ in PAPER_CODES:
        for ratio in RU_RATIOS:
            # LogECMem always beats IPMem (fewer parity reads: 1 vs r)
            assert _get(rows, "logecmem", k, ratio) < _get(rows, "ipmem", k, ratio)
            # replication cheapest
            assert _get(rows, "replication", k, ratio) < _get(rows, "logecmem", k, ratio)
        # LogECMem beats FSMem update-light; FSMem wins update-heavy (small k)
        assert _get(rows, "fsmem", k, "95:5") > _get(rows, "logecmem", k, "95:5")
        if k <= 10:
            assert _get(rows, "fsmem", k, "50:50") < _get(rows, "logecmem", k, "50:50")

    # the r=4 codes show a larger LogECMem-vs-IPMem reduction than r=3
    def reduction(k):
        ip = _get(rows, "ipmem", k, "70:30")
        lec = _get(rows, "logecmem", k, "70:30")
        return (ip - lec) / ip

    assert reduction(10) > reduction(6)
    show(
        format_table(
            ["code", "LogECMem vs IPMem reduction @70:30 (paper: 32.7% r=3, 37.8% r=4)"],
            [[f"({k},{r})", f"{reduction(k) * 100:.1f}%"] for k, r in PAPER_CODES],
        )
    )
