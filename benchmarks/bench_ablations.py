"""Ablations of the design choices DESIGN.md calls out:

* merge-based buffer logging (§4.3) on/off -- buffer occupancy and disk IOs,
* log-buffer flush threshold -- IO batching vs backlog,
* payload_scale invariance -- counters must not depend on physical scaling,
* FSMem inline vs deferred GC,
* XOR-parity-in-DRAM vs logged parity -- the §3.1 single-failure argument.
"""

import pytest

from repro.analysis import format_table
from repro.bench.runner import run_workload
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.baselines import make_store
from repro.workloads import WorkloadSpec

SPEC = dict(n_objects=800, n_requests=800, seed=42)


def _spec(ratio="50:50"):
    return WorkloadSpec.read_update(ratio, **SPEC)


def test_ablation_merge_buffer(benchmark, show):
    """§4.3: merging in the buffer cuts both buffered bytes and disk IOs."""

    def run():
        out = {}
        for merge in (False, True):
            store = LogECMem(StoreConfig(k=6, r=3, scheme="pl", merge_buffer=merge))
            result = run_workload(store, _spec())
            merges = sum(n.buffer.merges for n in store.cluster.log_nodes.values())
            out[merge] = (result.disk_io_count, merges)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        ["merge-based buffer logging", "disk IOs", "buffer merges"],
        [["off", out[False][0], out[False][1]], ["on", out[True][0], out[True][1]]],
        title="Ablation: merge-based buffer logging (§4.3)",
    ))
    assert out[True][1] > 0
    assert out[False][1] == 0
    assert out[True][0] <= out[False][0]


def test_ablation_flush_threshold(benchmark, show):
    """Smaller flush thresholds mean more, smaller flush IOs."""
    def run():
        ios = {}
        for threshold in (64 << 10, 512 << 10):
            cfg = StoreConfig(k=6, r=3, scheme="pl")
            cfg.profile.log_flush_threshold_bytes = threshold
            cfg.profile.log_buffer_bytes = 2 * threshold
            store = LogECMem(cfg)
            result = run_workload(store, _spec())
            ios[threshold] = result.disk_io_count
        return ios

    ios = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        ["flush threshold", "disk IOs"],
        [[f"{t >> 10} KiB", n] for t, n in ios.items()],
        title="Ablation: log-buffer flush threshold",
    ))
    assert ios[64 << 10] > ios[512 << 10]


def test_ablation_payload_scale_invariance(benchmark, show):
    """Counters and latencies are functions of logical bytes only."""
    def run():
        results = {}
        for scale in (1 / 32, 1 / 8):
            store = LogECMem(StoreConfig(k=6, r=3, payload_scale=scale))
            result = run_workload(store, _spec())
            results[scale] = (
                result.mean_latency_us("update"),
                result.memory_bytes,
                result.counters["net_bytes"],
                result.disk_io_count,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    a, b = results[1 / 32], results[1 / 8]
    show(format_table(
        ["payload_scale", "update us", "memory B", "net B", "disk IOs"],
        [["1/32", f"{a[0]:.1f}", a[1], int(a[2]), a[3]],
         ["1/8", f"{b[0]:.1f}", b[1], int(b[2]), b[3]]],
        title="Ablation: physical payload scaling leaves accounting unchanged",
    ))
    assert a[0] == pytest.approx(b[0], rel=1e-6)
    assert a[1] == b[1]
    assert a[2] == b[2]
    assert a[3] == b[3]


def test_ablation_fsmem_gc_policy(benchmark, show):
    """Inline GC trades higher update tails for bounded stale space."""
    def run():
        deferred = make_store("fsmem", StoreConfig(k=6, r=3))
        res_deferred = run_workload(deferred, _spec())
        inline = make_store("fsmem", StoreConfig(k=6, r=3, fsmem_gc_stale_threshold=32))
        res_inline = run_workload(inline, _spec())
        return deferred, res_deferred, inline, res_inline

    deferred, res_deferred, inline, res_inline = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    show(format_table(
        ["GC policy", "update us (amortised)", "GC rounds", "stale B at end"],
        [
            ["deferred", f"{res_deferred.mean_latency_us('update'):.0f}",
             deferred.gc_rounds, deferred.stale_logical_bytes],
            [f"inline@32", f"{res_inline.mean_latency_us('update'):.0f}",
             inline.gc_rounds, inline.stale_logical_bytes],
        ],
        title="Ablation: FSMem GC policy",
    ))
    assert inline.gc_rounds > deferred.gc_rounds


def test_ablation_xor_parity_in_dram(benchmark, show):
    """§3.1/§3.3: single-failure repair from DRAM (XOR) vs from a log node.

    The XOR fast path never touches disk; forcing the same read through a
    logged parity (as a pure-parity-logging design would) is measurably
    slower, which is HybridPL's reason to keep one parity chunk in DRAM."""
    def run():
        store = LogECMem(StoreConfig(k=6, r=3))
        run_workload(store, _spec())
        key = next(iter(store.object_index.keys()))
        dram_path = store.degraded_read(key).latency_s
        # force the multi-failure path by excluding the XOR parity too
        loc = store.object_index.lookup(key)
        rec = store.stripe_index.get(loc.stripe_id)
        store.cluster.kill(rec.chunk_nodes[loc.seq_no])
        store.cluster.kill(rec.xor_parity_node())
        log_path = store.read(key).latency_s
        return dram_path, log_path

    dram_path, log_path = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        ["repair path", "latency us"],
        [["k-1 data + XOR parity (DRAM)", f"{dram_path * 1e6:.0f}"],
         ["via logged parity (disk)", f"{log_path * 1e6:.0f}"]],
        title="Ablation: DRAM XOR parity vs logged parity for single repair",
    ))
    assert log_path > dram_path
