"""Figure 14(c)-(d) (Experiment 6): degraded-read latency under two-chunk
failures for PL, PLR, PLR-m and PLM -- vs read:update ratio at (10,4), and
vs code at read:update = 95:5.  Two DRAM nodes are killed, so every degraded
read must materialise one logged parity from disk."""

from repro.analysis import format_table
from repro.bench.experiments import PAPER_CODES, RU_RATIOS, SCHEMES, experiment6

N_OBJECTS = 1200
N_REQUESTS = 1200
SAMPLES = 60


def _run():
    return experiment6(
        codes=PAPER_CODES,
        ratios=tuple(RU_RATIOS),
        n_objects=N_OBJECTS,
        n_requests=N_REQUESTS,
        samples=SAMPLES,
    )


def test_fig14b_multifailure_repair(benchmark, show):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    def get(scheme, k, ratio):
        return next(
            r["degraded_latency_us"]
            for r in rows
            if r["scheme"] == scheme and r["k"] == k and r["ratio"] == ratio
        )

    panel_c = [
        [scheme] + [f"{get(scheme, 10, ratio):.0f}" for ratio in RU_RATIOS]
        for scheme in SCHEMES
    ]
    show(format_table(["scheme"] + RU_RATIOS, panel_c,
                      title="Fig 14(c): degraded read us vs r:u, (10,4), 2 failures"))
    panel_d = [
        [scheme] + [f"{get(scheme, k, '95:5'):.0f}" for k, _ in PAPER_CODES]
        for scheme in SCHEMES
    ]
    show(format_table(["scheme"] + [f"({k},{r})" for k, r in PAPER_CODES], panel_d,
                      title="Fig 14(d): degraded read us vs code, r:u = 95:5"))

    # shapes: PL worst (random delta chasing); reserved-space schemes similar,
    # PLM at least ties PLR; gap grows with update ratio, shrinks with k
    for ratio in RU_RATIOS:
        assert get("pl", 10, ratio) > get("plr", 10, ratio)
        assert get("plm", 10, ratio) <= get("plr", 10, ratio) * 1.02
    gap_light = get("pl", 10, "95:5") / get("plm", 10, "95:5")
    gap_heavy = get("pl", 10, "50:50") / get("plm", 10, "50:50")
    assert gap_heavy > gap_light

    def improvement(k):
        return 1 - get("plm", k, "95:5") / get("pl", k, "95:5")

    show(format_table(
        ["code", "PLM vs PL improvement @95:5 (paper: 20.3% k=6 -> 11.8% k=15)"],
        [[f"({k},{r})", f"{improvement(k)*100:.1f}%"] for k, r in PAPER_CODES],
    ))
    assert improvement(6) > improvement(15) > 0
